#!/usr/bin/env python3
"""Validate the telemetry artifacts of an instrumented run.

Checks two files produced by a TB_TELEMETRY=1 run:

  * the Chrome trace ($TB_TRACE): valid JSON with a non-empty
    "traceEvents" array of complete "X" events whose timestamps are
    monotone per thread — the shape chrome://tracing / Perfetto imports;
  * the run database ($TB_RUNDB): one JSON object per line with the
    current schema version, a positive measured MLUP/s and (with
    --require-predicted) the NodeModel prediction next to it.

Exit code 0 when everything holds, 1 with a message otherwise.

  $ python3 scripts/check_telemetry.py --trace trace.json \
        --rundb runs.jsonl --require-span sweep --require-predicted
"""

import argparse
import json
import sys

RUN_ROW_SCHEMA = 1
EVENT_KEYS = ("name", "cat", "ph", "pid", "tid", "ts", "dur")


def fail(msg):
    print(f"check_telemetry: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_trace(path, require_spans):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: not readable as JSON ({e})")

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: no traceEvents")

    last_ts = {}
    names = set()
    for i, e in enumerate(events):
        for key in EVENT_KEYS:
            if key not in e:
                fail(f"{path}: event {i} missing '{key}': {e}")
        if e["ph"] != "X":
            fail(f"{path}: event {i} has ph={e['ph']!r}, expected 'X'")
        if e["ts"] < 0 or e["dur"] < 0:
            fail(f"{path}: event {i} has negative ts/dur: {e}")
        tid = e["tid"]
        if tid in last_ts and e["ts"] < last_ts[tid]:
            fail(
                f"{path}: event {i} breaks per-thread monotonicity "
                f"(tid {tid}: {e['ts']} < {last_ts[tid]})"
            )
        last_ts[tid] = e["ts"]
        names.add(e["name"])

    for want in require_spans:
        if not any(want in n for n in names):
            fail(f"{path}: no span matching '{want}' (have: {sorted(names)})")

    print(
        f"check_telemetry: {path}: {len(events)} events across "
        f"{len(last_ts)} threads, spans {sorted(names)}"
    )


def check_rundb(path, require_predicted):
    try:
        with open(path) as f:
            lines = [ln for ln in f.read().splitlines() if ln.strip()]
    except OSError as e:
        fail(f"{path}: not readable ({e})")
    if not lines:
        fail(f"{path}: empty run database")

    for i, line in enumerate(lines):
        try:
            row = json.loads(line)
        except json.JSONDecodeError as e:
            fail(f"{path}:{i + 1}: not valid JSON ({e})")
        if row.get("schema") != RUN_ROW_SCHEMA:
            fail(f"{path}:{i + 1}: schema {row.get('schema')!r}, "
                 f"expected {RUN_ROW_SCHEMA}")
        if not row.get("name"):
            fail(f"{path}:{i + 1}: missing name")
        if not row.get("mlups", 0) > 0:
            fail(f"{path}:{i + 1}: non-positive mlups: {row.get('mlups')}")
        if require_predicted and not row.get("predicted_mlups", 0) > 0:
            fail(f"{path}:{i + 1}: missing predicted_mlups "
                 "(model-vs-measured row expected)")

    print(f"check_telemetry: {path}: {len(lines)} run row(s) OK")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--trace", help="Chrome trace JSON to validate")
    ap.add_argument("--rundb", help="run-row JSONL to validate")
    ap.add_argument(
        "--require-span",
        action="append",
        default=[],
        help="substring at least one trace span name must contain "
        "(repeatable)",
    )
    ap.add_argument(
        "--require-predicted",
        action="store_true",
        help="every run row must carry predicted_mlups > 0",
    )
    args = ap.parse_args()
    if not args.trace and not args.rundb:
        ap.error("nothing to check: pass --trace and/or --rundb")

    if args.trace:
        check_trace(args.trace, args.require_span)
    if args.rundb:
        check_rundb(args.rundb, args.require_predicted)
    print("check_telemetry: OK")


if __name__ == "__main__":
    main()
