#!/usr/bin/env python3
"""Compare two sets of BENCH_*.json bench records and fail on regressions.

Every bench driver emits a BENCH_<name>.json with entries
{"name": ..., "bytes_per_lup": ..., "mlups": ...}.  CI archives these per
run; this script diffs the freshly produced set against the previous
artifact and exits non-zero when any entry's throughput dropped by more
than the threshold (default 25%), printing a per-entry table either way.

Usage:
    check_bench_regression.py --old PREV_DIR --new NEW_DIR [--threshold 0.25]
                              [--thresholds MAP.json]

--thresholds names a JSON object mapping entry-key patterns
(fnmatch-style, matched against "BENCH_<file>.json:<entry>") to
per-entry thresholds; the first matching pattern (in file order) wins,
unmatched entries use --threshold.  This is how stable entries (naive
reference sweeps) get a tight gate while noisy ones (temporally blocked
schedules on shared CI runners) keep headroom.

Entries present on only one side are reported but never fail the check
(benches come and go across PRs); a missing or empty --old directory is a
clean pass (the first run has nothing to regress against).  Entries whose
old throughput is ~0 (modeled placeholders) are skipped.

Absolute MLUP/s only compare on like hardware, so each side may carry a
`bench-host.txt` fingerprint (CPU model + core count, written by CI next
to the JSON): when both sides have one and they differ, the comparison
is skipped with a notice instead of failing on runner heterogeneity —
the same machine-signature guard the tuning cache applies to its plans.

Only the Python standard library is used.
"""

import argparse
import json
import sys
from fnmatch import fnmatchcase
from pathlib import Path


def load_records(directory: Path) -> dict:
    """Maps "file:entry-name" -> mlups for every BENCH_*.json in a dir."""
    records = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            entries = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as err:
            print(f"warning: skipping unreadable {path}: {err}")
            continue
        if not isinstance(entries, list):
            print(f"warning: {path} is not a JSON array, skipping")
            continue
        for entry in entries:
            name = entry.get("name")
            mlups = entry.get("mlups")
            if isinstance(name, str) and isinstance(mlups, (int, float)):
                records[f"{path.name}:{name}"] = float(mlups)
    return records


def load_threshold_map(path: Path) -> list:
    """Ordered (pattern, threshold) pairs from a JSON object file."""
    try:
        raw = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot read threshold map {path}: {err}")
        raise SystemExit(1)
    if not isinstance(raw, dict):
        print(f"error: threshold map {path} must be a JSON object")
        raise SystemExit(1)
    pairs = []
    for pattern, value in raw.items():
        if pattern.startswith("__"):  # annotation keys, e.g. __comment
            continue
        if not isinstance(value, (int, float)) or not 0 < value < 1:
            print(f"error: threshold for '{pattern}' must be in (0, 1), "
                  f"got {value!r}")
            raise SystemExit(1)
        pairs.append((pattern, float(value)))
    return pairs


def threshold_for(key: str, pairs: list, default: float) -> float:
    """First matching pattern wins; --threshold covers the rest."""
    for pattern, value in pairs:
        if fnmatchcase(key, pattern):
            return value
    return default


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--old", required=True, type=Path,
                        help="directory with the previous BENCH_*.json set")
    parser.add_argument("--new", required=True, type=Path,
                        help="directory with the fresh BENCH_*.json set")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="max tolerated fractional drop (default 0.25)")
    parser.add_argument("--thresholds", type=Path, default=None,
                        help="JSON object of entry-key fnmatch patterns to "
                             "per-entry thresholds (first match wins)")
    args = parser.parse_args()
    threshold_map = (load_threshold_map(args.thresholds)
                     if args.thresholds else [])

    if not args.old.is_dir():
        print(f"no previous bench records at {args.old}: nothing to "
              "compare, passing")
        return 0

    old_host = (args.old / "bench-host.txt")
    new_host = (args.new / "bench-host.txt")
    if new_host.is_file():
        if not old_host.is_file():
            # Fingerprint-less records predate the guard: their hardware
            # is unknown, so treat them as incomparable rather than risk
            # a spurious cross-runner failure.
            print("previous records carry no host fingerprint, skipping "
                  "the comparison (next run establishes the baseline)")
            return 0
        old_fp = old_host.read_text().strip()
        new_fp = new_host.read_text().strip()
        if old_fp != new_fp:
            print("previous records were measured on different hardware, "
                  "skipping the comparison:\n"
                  f"  old: {old_fp}\n  new: {new_fp}")
            return 0

    old = load_records(args.old)
    new = load_records(args.new)
    if not old:
        print("previous bench record set is empty: nothing to compare, "
              "passing")
        return 0
    if not new:
        print(f"error: no BENCH_*.json found under {args.new}")
        return 1

    regressions = []
    width = max(len(k) for k in sorted(old | new)) if (old or new) else 20
    print(f"{'entry':<{width}}  {'old':>10}  {'new':>10}  change")
    for key in sorted(old.keys() | new.keys()):
        if key not in old:
            print(f"{key:<{width}}  {'-':>10}  {new[key]:>10.1f}  (new entry)")
            continue
        if key not in new:
            print(f"{key:<{width}}  {old[key]:>10.1f}  {'-':>10}  (removed)")
            continue
        if old[key] <= 1e-9:  # modeled zero / placeholder: no baseline
            continue
        limit = threshold_for(key, threshold_map, args.threshold)
        change = new[key] / old[key] - 1.0
        flag = ""
        if change < -limit:
            flag = f"  << REGRESSION (>{limit:.0%})"
            regressions.append((key, old[key], new[key], change, limit))
        print(f"{key:<{width}}  {old[key]:>10.1f}  {new[key]:>10.1f}  "
              f"{change:+7.1%}{flag}")

    if regressions:
        print(f"\n{len(regressions)} entr{'y' if len(regressions) == 1 else 'ies'} "
              "regressed beyond their threshold:")
        for key, old_v, new_v, change, limit in regressions:
            print(f"  {key}: {old_v:.1f} -> {new_v:.1f} MLUP/s "
                  f"({change:+.1%}, limit {limit:.0%})")
        return 1
    print("\nno throughput regression beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
