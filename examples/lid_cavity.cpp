// Lid-driven cavity flow through the registry: the lattice-Boltzmann
// application the paper announces as the follow-up to its Jacobi
// prototype, now just `--operator lbm` on the unified solver stack.
//
//   $ ./lid_cavity [--n 32] [--steps 400] [--omega 1.2] [--ulid 0.05]
//                  [--variant pipelined|compressed|wavefront|baseline|auto]
//                  [--t 2] [--ranks 1]
//
// A cubic box of fluid, all walls no-slip except the top (z = max) lid
// moving in +x.  Any scheme of the variant x operator matrix (including
// the autotuned "auto") advances the same D3Q19 stream-collide update;
// the solver facade reports the evolved density field, and the lbm
// side-channel state provides the flow diagnostics: the classic u_x
// profile along the vertical center line (recirculation vortex) plus
// mass conservation.
//
// With --ranks N > 1 the same flow runs rank-decomposed on the simnet
// runtime ("dist:lbm", dist/registry.hpp): the multi-layer halo exchange
// ships the 19 distribution fields alongside the density carrier, the
// final lattice is gathered back, and the diagnostics are computed from
// it — bit-identical to the shared-memory run, whatever the process
// grid.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/registry.hpp"
#include "dist/registry.hpp"
#include "lbm/stencil_op.hpp"
#include "obs/accounting.hpp"
#include "obs/obs.hpp"
#include "obs/rundb.hpp"
#include "perfmodel/cluster_model.hpp"  // dims_create
#include "scenario/scenario_engine.hpp"
#include "topo/machine.hpp"
#include "util/args.hpp"

namespace {

/// Prints the center-line u_x profile and vortex signature from a
/// lattice (shared by the shared-memory and distributed paths).
void print_profile(const tb::lbm::Lattice& result, int n, double ulid) {
  std::printf("u_x / u_lid along the vertical center line:\n");
  std::printf("%6s  %10s\n", "z/n", "u_x/u_lid");
  for (int k = 1; k < n - 1; k += std::max(1, (n - 2) / 16)) {
    const auto u = result.velocity(n / 2, n / 2, k);
    std::printf("%6.3f  %10.4f\n", static_cast<double>(k) / (n - 1),
                u[0] / ulid);
  }

  // The signature of the cavity vortex: forward flow under the lid,
  // reverse flow near the bottom.
  const auto top = result.velocity(n / 2, n / 2, n - 2);
  const auto bottom = result.velocity(n / 2, n / 2, 1 + n / 8);
  std::printf("\nnear-lid u_x = %.4f, lower-cavity u_x = %.4f %s\n",
              top[0], bottom[0],
              (top[0] > 0 && bottom[0] < top[0]) ? "(vortex forming)"
                                                 : "");
}

}  // namespace

int main(int argc, char** argv) {
  const tb::util::Args args(argc, argv);
  tb::util::StandardFlags flags;
  flags.n = 32;
  flags.steps = 400;
  flags.parse(args);
  if (!flags.scenario.empty())
    return tb::scenario::run_scenario_file(flags.scenario);
  const int n = flags.n;
  const int steps = flags.steps;
  const int t = flags.threads;
  const int ranks = static_cast<int>(args.get_int("ranks", 1));

  tb::core::SolverConfig cfg;
  cfg.lbm.omega = args.get_double("omega", 1.2);
  cfg.lbm.lid_velocity = {args.get_double("ulid", 0.05), 0.0, 0.0};
  cfg.pipeline.teams = 1;
  cfg.pipeline.team_size = t;
  cfg.pipeline.steps_per_thread = 2;
  cfg.pipeline.block = {n, 8, 8};
  cfg.pipeline.du = 3;
  cfg.baseline.threads = t;
  cfg.wavefront.threads = t;
  const std::string variant = args.get_choice(
      "variant", "pipelined", tb::core::selectable_variants());

  // Initial state: fluid at rest, unit density everywhere; the operator
  // derives the cavity geometry (closed box, moving top lid) from the
  // grid shape.
  tb::core::Grid3 initial(n, n, n);
  initial.fill(1.0);

  if (ranks > 1) {
    // Rank-decomposed run: the distributed solver always runs the
    // pipelined scheme rank-locally, so --variant does not apply here.
    tb::dist::DistConfig dcfg;
    dcfg.proc_dims = tb::perfmodel::dims_create(ranks);
    dcfg.pipeline = cfg.pipeline;
    dcfg.lbm = cfg.lbm;
    const int h = dcfg.pipeline.levels_per_sweep();
    const int epochs = std::max(1, steps / h);

    tb::core::Grid3 density = initial.clone();
    std::vector<tb::core::Grid3> fields;
    tb::dist::run_distributed_named("dist:lbm", ranks, dcfg, initial,
                                    epochs, &density, nullptr, &fields);

    // Rebuild the gathered final-level lattice for the diagnostics.
    tb::lbm::Lattice result(n, n, n);
    for (int q = 0; q < tb::lbm::kQ; ++q)
      for (int k = 0; k < n; ++k)
        for (int j = 0; j < n; ++j)
          for (int i = 0; i < n; ++i)
            result.f(q).at(i, j, k) =
                fields[static_cast<std::size_t>(q)].at(i, j, k);

    const tb::lbm::LbmState state0(tb::lbm::Geometry::cavity(n, n, n),
                                   cfg.lbm, initial);
    const double mass0 = state0.current(0).total_mass(state0.geometry());

    std::printf(
        "lid-driven cavity %d^3 (dist:lbm, %d ranks = %dx%dx%d, h = %d), "
        "omega=%.2f, u_lid=%.3f, %d steps\n",
        n, ranks, dcfg.proc_dims[0], dcfg.proc_dims[1], dcfg.proc_dims[2],
        h, cfg.lbm.omega, cfg.lbm.lid_velocity[0], epochs * h);
    std::printf(
        "gathered density + 19 distribution fields, mass drift %.2e\n\n",
        result.total_mass(state0.geometry()) / mass0 - 1.0);
    print_profile(result, n, cfg.lbm.lid_velocity[0]);
    return 0;
  }

  tb::core::StencilSolver solver =
      tb::core::make_solver(variant, "lbm", cfg, initial);
  const tb::lbm::LbmState* state = solver.lbm_state();
  const double mass0 =
      state->current(0).total_mass(state->geometry());

  const tb::core::RunStats st = solver.advance(steps);
  const tb::lbm::Lattice& result = state->current(solver.levels_done());

  std::printf(
      "lid-driven cavity %d^3 (%s), omega=%.2f, u_lid=%.3f, %d steps\n",
      n, variant.c_str(), cfg.lbm.omega, cfg.lbm.lid_velocity[0], steps);
  std::printf("wall time %.3f s, %.1f MLUP/s (host), mass drift %.2e\n\n",
              st.seconds, st.mlups(),
              result.total_mass(state->geometry()) / mass0 - 1.0);

  // Model-vs-measured accounting: with telemetry on (TB_TELEMETRY=1 or
  // cfg.telemetry) the run appends one row to the run database carrying
  // the NodeModel expectation next to the achieved rate plus the
  // per-phase seconds the instrumented solver recorded.
  if (tb::obs::enabled()) {
    const tb::core::SolverConfig& rcfg = solver.config();
    const std::string opname =
        rcfg.lbm_storage == tb::lbm::LbmStorage::kAA ? "lbm:aa" : "lbm";
    const tb::perfmodel::NodeModel model(tb::topo::host_machine());
    tb::obs::RunRow row;
    row.name = variant + "/" + opname;
    row.bytes_per_lup = tb::obs::model_bytes_per_lup(rcfg, opname);
    row.mlups = st.mlups();
    row.predicted_mlups =
        tb::obs::predicted_solver_mlups(rcfg, opname, model, n, n);
    row.phases = tb::obs::phase_seconds_snapshot();
    row.tags = {{"example", "lid_cavity"}, {"variant", variant},
                {"op", opname}};
    tb::obs::append_run_rows(tb::obs::default_rundb_path(), {row});
    std::printf("model-vs-measured: NodeModel %.1f MLUP/s, achieved %.1f "
                "MLUP/s (row appended to %s)\n\n",
                row.predicted_mlups, row.mlups,
                tb::obs::default_rundb_path().c_str());
  }

  print_profile(result, n, cfg.lbm.lid_velocity[0]);
  return 0;
}
