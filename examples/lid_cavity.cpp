// Lid-driven cavity flow through the registry: the lattice-Boltzmann
// application the paper announces as the follow-up to its Jacobi
// prototype, now just `--operator lbm` on the unified solver stack.
//
//   $ ./lid_cavity [--n 32] [--steps 400] [--omega 1.2] [--ulid 0.05]
//                  [--variant pipelined|compressed|wavefront|baseline|auto]
//                  [--t 2]
//
// A cubic box of fluid, all walls no-slip except the top (z = max) lid
// moving in +x.  Any scheme of the variant x operator matrix (including
// the autotuned "auto") advances the same D3Q19 stream-collide update;
// the solver facade reports the evolved density field, and the lbm
// side-channel state provides the flow diagnostics: the classic u_x
// profile along the vertical center line (recirculation vortex) plus
// mass conservation.
#include <algorithm>
#include <cstdio>

#include "core/registry.hpp"
#include "lbm/stencil_op.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  const tb::util::Args args(argc, argv);
  const int n = static_cast<int>(args.get_int("n", 32));
  const int steps = static_cast<int>(args.get_int("steps", 400));
  const int t = static_cast<int>(args.get_int("t", 2));

  tb::core::SolverConfig cfg;
  cfg.lbm.omega = args.get_double("omega", 1.2);
  cfg.lbm.lid_velocity = {args.get_double("ulid", 0.05), 0.0, 0.0};
  cfg.pipeline.teams = 1;
  cfg.pipeline.team_size = t;
  cfg.pipeline.steps_per_thread = 2;
  cfg.pipeline.block = {n, 8, 8};
  cfg.pipeline.du = 3;
  cfg.baseline.threads = t;
  cfg.wavefront.threads = t;
  const std::string variant = args.get_choice(
      "variant", "pipelined", tb::core::selectable_variants());

  // Initial state: fluid at rest, unit density everywhere; the operator
  // derives the cavity geometry (closed box, moving top lid) from the
  // grid shape.
  tb::core::Grid3 initial(n, n, n);
  initial.fill(1.0);

  tb::core::StencilSolver solver =
      tb::core::make_solver(variant, "lbm", cfg, initial);
  const tb::lbm::LbmState* state = solver.lbm_state();
  const double mass0 =
      state->current(0).total_mass(state->geometry());

  const tb::core::RunStats st = solver.advance(steps);
  const tb::lbm::Lattice& result = state->current(solver.levels_done());

  std::printf(
      "lid-driven cavity %d^3 (%s), omega=%.2f, u_lid=%.3f, %d steps\n",
      n, variant.c_str(), cfg.lbm.omega, cfg.lbm.lid_velocity[0], steps);
  std::printf("wall time %.3f s, %.1f MLUP/s (host), mass drift %.2e\n\n",
              st.seconds, st.mlups(),
              result.total_mass(state->geometry()) / mass0 - 1.0);

  std::printf("u_x / u_lid along the vertical center line:\n");
  std::printf("%6s  %10s\n", "z/n", "u_x/u_lid");
  for (int k = 1; k < n - 1; k += std::max(1, (n - 2) / 16)) {
    const auto u = result.velocity(n / 2, n / 2, k);
    std::printf("%6.3f  %10.4f\n", static_cast<double>(k) / (n - 1),
                u[0] / cfg.lbm.lid_velocity[0]);
  }

  // The signature of the cavity vortex: forward flow under the lid,
  // reverse flow near the bottom.
  const auto top = result.velocity(n / 2, n / 2, n - 2);
  const auto bottom = result.velocity(n / 2, n / 2, 1 + n / 8);
  std::printf("\nnear-lid u_x = %.4f, lower-cavity u_x = %.4f %s\n",
              top[0], bottom[0],
              (top[0] > 0 && bottom[0] < top[0]) ? "(vortex forming)"
                                                 : "");
  return 0;
}
