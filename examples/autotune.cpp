// Auto-tuning driver over the src/tune/ subsystem: enumerate candidate
// schedules for the problem, rank them with the analytic performance
// models, time the shortlist with real probes, persist the winner in the
// tuning cache — then validate the chosen plan bit-identically against
// the naive reference.
//
//   $ ./autotune [--n 64] [--operator jacobi] [--variant auto]
//                [--top 4] [--probe-n 64] [--cache <path>] [--no-cache]
//                [--machine host|nehalem|nehalem-socket|core2]
//
// A second invocation with the same problem and cache hits the
// persistent cache and performs ZERO timed probes — the paper's "huge
// parameter space" collapses to one file lookup.  --variant with a
// concrete registry name constrains tuning to that variant's tunables;
// the default "auto" searches the whole matrix, exactly like
// `--variant auto` does in every other example.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "obs/registry.hpp"
#include "tune/planner.hpp"
#include "tune/tuning_cache.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

namespace {

tb::topo::MachineSpec pick_machine(const std::string& name) {
  if (name == "nehalem") return tb::topo::nehalem_ep();
  if (name == "nehalem-socket") return tb::topo::nehalem_ep_socket();
  if (name == "core2") return tb::topo::core2_like();
  return tb::topo::host_machine();
}

}  // namespace

int main(int argc, char** argv) {
  const tb::util::Args args(argc, argv);
  const int n = static_cast<int>(args.get_int("n", 64));

  tb::tune::Problem problem;
  problem.nx = problem.ny = problem.nz = n;
  problem.op = args.get_choice("operator", "jacobi",
                               tb::core::registered_operators());
  {
    std::vector<std::string> any = tb::core::registered_variants();
    any.emplace_back("auto");
    const std::string v = args.get_choice("variant", "auto", any);
    if (v != "auto") problem.variant = v;
  }

  tb::tune::PlanOptions opts;
  opts.machine = pick_machine(args.get_choice(
      "machine", "host", {"host", "nehalem", "nehalem-socket", "core2"}));
  opts.shortlist_size = static_cast<int>(args.get_int("top", 4));
  opts.probe.max_extent = static_cast<int>(args.get_int("probe-n", 64));
  opts.use_cache = !args.get_bool("no-cache", false);
  opts.cache_path = args.get("cache", "");
  opts.verbose = true;
#if defined(__unix__) || defined(__APPLE__)
  // Route the registry's "auto" resolver (used below for validation) to
  // the same cache file as the explicit plan() calls.
  if (!opts.cache_path.empty())
    ::setenv("TB_TUNE_CACHE", opts.cache_path.c_str(), 1);
#endif

  std::printf("autotune: problem %s on %s\n\n", problem.describe().c_str(),
              opts.machine->name.c_str());
  const tb::tune::Plan plan = tb::tune::plan(problem, opts);

  if (plan.from_cache) {
    std::printf("\ncached plan (0 timed probes): %s, %.1f MLUP/s when "
                "measured\n",
                plan.best.describe().c_str(), plan.best.measured_mlups);
  } else {
    std::printf("\n%d candidates enumerated, %d probed:\n\n",
                plan.enumerated, plan.probes_run);
    tb::util::TableWriter t(
        {"rank", "schedule", "model MLUP/s", "measured MLUP/s"});
    for (std::size_t i = 0; i < plan.shortlist.size(); ++i) {
      const tb::tune::Candidate& c = plan.shortlist[i];
      t.add(static_cast<int>(i) + 1, c.describe(), c.predicted_mlups,
            c.measured_mlups);
    }
    t.print();
    std::printf("\nwinner: %s\n", plan.best.describe().c_str());
  }

  // Tuner telemetry (the counters tick on the cold planning path even
  // with TB_TELEMETRY off): how the persistent cache behaved and whether
  // the model's top-ranked schedule survived the probes.
  {
    const tb::obs::Registry& reg = tb::obs::Registry::global();
    std::printf(
        "\ntuner telemetry: cache hit %llu / miss %llu / invalidated %llu, "
        "probes %llu, model pick %s\n",
        static_cast<unsigned long long>(reg.counter_value("tune.cache.hit")),
        static_cast<unsigned long long>(reg.counter_value("tune.cache.miss")),
        static_cast<unsigned long long>(
            reg.counter_value("tune.cache.invalidated")),
        static_cast<unsigned long long>(reg.counter_value("tune.probes")),
        reg.counter_value("tune.winner.model_disagreed") > 0
            ? "overturned by probes"
            : (reg.counter_value("tune.winner.model_agreed") > 0
                   ? "confirmed by probes"
                   : "not probed (cache hit)"));
  }

  // Validate the *chosen plan*: the winner's schedule, replayed on the
  // problem (capped so the single-threaded oracle stays cheap — a
  // schedule's bit-compatibility is shape-independent), must match the
  // naive reference exactly.
  const int m = std::min(n, 96);
  if (m != n)
    std::printf("\n(validating the winning schedule on a %d^3 grid — the "
                "%d^3 oracle would dominate the run)\n",
                m, n);
  tb::core::Grid3 initial(m, m, m);
  tb::core::fill_test_pattern(initial);
  const tb::core::Grid3 kappa = tb::core::make_slab_kappa(m, m, m);
  const int steps = 12;

  tb::core::SolverConfig cfg;
  tb::core::StencilSolver ref = tb::core::make_solver(
      "reference", problem.op, cfg, initial, &kappa);
  ref.advance(steps);

  // When this invocation matches the registry resolver's defaults (host
  // machine, caching on, unconstrained) and the shapes agree, exercise
  // `--variant auto` end to end — by construction a cache hit replaying
  // the plan above.  Otherwise apply the winner directly: the resolver
  // would silently re-tune under its own machine/cache options.
  const bool hook_replays_plan =
      problem.variant.empty() && opts.use_cache && m == n &&
      args.get("machine", "host") == std::string("host");
  std::printf("\nvalidation (%d^3, %d steps): ", m, steps);
  tb::core::StencilSolver tuned = [&] {
    if (hook_replays_plan)
      return tb::core::make_solver("auto", problem.op, cfg, initial,
                                   &kappa);
    tb::core::SolverConfig winner = cfg;
    plan.best.apply(winner);
    return tb::core::make_solver(plan.best.variant, problem.op, winner,
                                 initial, &kappa);
  }();
  tuned.advance(steps);
  const double diff =
      tb::core::max_abs_diff(tuned.solution(), ref.solution());
  std::printf("max |diff| vs reference = %g %s\n", diff,
              diff == 0.0 ? "(exact)" : "(MISMATCH!)");
  return diff == 0.0 ? 0 : 1;
}
