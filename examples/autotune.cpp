// Auto-tuning example: search the pipelined-blocking parameter space
// (T, d_u, block geometry) on the machine model, report the ranking, and
// validate the winner for numerical correctness with real runs of the
// FULL (variant x operator) registry matrix.
//
//   $ ./autotune [--n 600] [--top 8] [--node]
//                [--variant all] [--operator all]
//
// The paper stresses that "the parameter space for temporal blocking
// schemes, and especially for pipelined blocking, is huge" and that the
// reported optima were found experimentally.  This example shows how the
// library's simulator turns that search into seconds of model evaluation;
// on real hardware the same loop can drive wall-clock measurements via
// StencilSolver instead.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "core/stencil_op.hpp"
#include "sim/node_sim.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

namespace {

struct Candidate {
  tb::core::PipelineConfig cfg;
  double mlups = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const tb::util::Args args(argc, argv);
  const int n = static_cast<int>(args.get_int("n", 600));
  const int top = static_cast<int>(args.get_int("top", 8));
  const bool node = args.get_bool("node", false);

  std::vector<std::string> variants = tb::core::registered_variants();
  std::vector<std::string> operators = tb::core::registered_operators();
  {
    std::vector<std::string> any = variants;
    any.emplace_back("all");
    const std::string v = args.get_choice("variant", "all", any);
    if (v != "all") variants = {v};
    any = operators;
    any.emplace_back("all");
    const std::string o = args.get_choice("operator", "all", any);
    if (o != "all") operators = {o};
  }

  tb::sim::SimMachine machine;
  if (!node) machine.spec = tb::topo::nehalem_ep_socket();
  const std::array<int, 3> grid{n, n, n};

  std::vector<Candidate> results;
  for (int T : {1, 2, 4})
    for (int du : {1, 2, 4, 6, 8})
      for (const tb::core::BlockSize b :
           {tb::core::BlockSize{60, 20, 20}, tb::core::BlockSize{120, 20, 20},
            tb::core::BlockSize{120, 10, 10},
            tb::core::BlockSize{120, 30, 30},
            tb::core::BlockSize{240, 20, 20},
            tb::core::BlockSize{600, 20, 20}}) {
        Candidate c;
        c.cfg.teams = node ? 2 : 1;
        c.cfg.team_size = 4;
        c.cfg.steps_per_thread = T;
        c.cfg.du = du;
        c.cfg.block = b;
        c.mlups = tb::sim::simulate_pipeline(machine, c.cfg, grid, 1).mlups;
        results.push_back(c);
      }

  std::sort(results.begin(), results.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.mlups > b.mlups;
            });

  std::printf("autotune on %s, %d^3 grid: %zu configurations evaluated\n\n",
              machine.spec.name.c_str(), n, results.size());
  tb::util::TableWriter t({"rank", "T", "du", "block", "model MLUP/s"});
  for (int i = 0; i < top && i < static_cast<int>(results.size()); ++i) {
    const Candidate& c = results[static_cast<std::size_t>(i)];
    t.add(i + 1, c.cfg.steps_per_thread, c.cfg.du,
          std::to_string(c.cfg.block.bx) + "x" +
              std::to_string(c.cfg.block.by) + "x" +
              std::to_string(c.cfg.block.bz),
          c.mlups);
  }
  t.print();

  // Validate the winner numerically on small real runs: the tuned
  // pipeline shape (scaled down for the host) must stay bit-identical to
  // the reference for EVERY registry variant and operator.
  const Candidate& best = results.front();
  const int m = 24;
  tb::core::Grid3 initial(m, m, m);
  tb::core::fill_test_pattern(initial);
  tb::core::Grid3 kappa(m, m, m);
  kappa.fill(1.0);
  for (int k = m / 3; k < 2 * m / 3; ++k)
    for (int j = 0; j < m; ++j)
      for (int i = 0; i < m; ++i) kappa.at(i, j, k) = 50.0;

  tb::core::SolverConfig winner;
  winner.pipeline = best.cfg;
  winner.pipeline.teams = 1;
  winner.pipeline.team_size = 2;  // scaled down for the 1-core host
  winner.pipeline.block = {8, 6, 6};
  winner.baseline.threads = 2;
  winner.wavefront.threads = 2;

  const int steps = 2 * winner.pipeline.levels_per_sweep() *
                    winner.wavefront.threads;
  std::printf("\nwinner validation on %d^3 host runs (%d steps):\n", m,
              steps);
  bool all_ok = true;
  for (const std::string& op : operators) {
    tb::core::SolverConfig refc;
    tb::core::StencilSolver ref =
        make_solver("reference", op, refc, initial, &kappa);
    ref.advance(steps);
    for (const std::string& v : variants) {
      tb::core::StencilSolver s =
          make_solver(v, op, winner, initial, &kappa);
      s.advance(steps);
      const double diff =
          tb::core::max_abs_diff(s.solution(), ref.solution());
      std::printf("  %-10s / %-7s : max |diff| = %g %s\n", v.c_str(),
                  op.c_str(), diff,
                  diff == 0.0 ? "(exact)" : "(MISMATCH!)");
      all_ok = all_ok && diff == 0.0;
    }
  }
  return all_ok ? 0 : 1;
}
