// Cluster-scaling example: the two simulated-cluster backends side by
// side.
//
//   $ ./cluster_scaling [--n 66] [--epochs 3] [--T 2] [--t 2]
//                       [--operator jacobi|varcoef|box27|redblack|lbm]
//                       [--topology fat-tree|torus|cloud] [--ranks 4096]
//
// Part 1 runs the *executing* distributed solver on the in-process rank
// runtime (tb::simnet::World, one thread per rank): domain decomposition,
// multi-layer halo exchange along x->y->z, per-rank pipelined temporal
// blocking with shrinking update regions — the code path a real MPI
// deployment would take, checked bit-compatible against the single-rank
// solver.  The operator comes from the distributed string registry
// (dist/registry.hpp), so even lbm runs decomposed, its 19 distribution
// fields riding the exchange alongside the density carrier.
//
// Part 2 validates the discrete-event backend against that thread-backed
// oracle: the same 2x2x2 halo-exchange schedule (one RankProgram per
// rank, built from the shared dist::Decomposition) replays through both
// worlds, and the per-epoch simulated times must agree to rounding.
//
// Part 3 is what the threads cannot do: a weak-scaling sweep to O(10^4)
// modeled ranks over the chosen fabric (--topology, default the paper's
// non-blocking fat-tree), each point cross-checked against the closed
// perfmodel::evaluate_cluster prediction and emitted as modeled rows
// into BENCH_simnet.json / the run database.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/reference.hpp"
#include "dist/rank_program.hpp"
#include "dist/registry.hpp"
#include "perfmodel/cluster_model.hpp"
#include "perfmodel/model_api.hpp"
#include "simnet/event/cluster_sweep.hpp"
#include "simnet/event/engine.hpp"
#include "simnet/rank_program.hpp"
#include "topo/fabric.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

namespace {

struct RankView {
  double sim_seconds = 0.0;
  std::uint64_t bytes = 0;
  std::uint64_t messages = 0;
};

/// Rank counts for the modeled sweep: x8 steps (each doubling every
/// dimension of the process grid) from 8 up to `max_ranks`, which is
/// always included as the final point.
std::vector<int> sweep_ranks(int max_ranks) {
  std::vector<int> out;
  for (int r = 8; r < max_ranks; r *= 8) out.push_back(r);
  if (out.empty() || out.back() != max_ranks) out.push_back(max_ranks);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const tb::util::Args args(argc, argv);
  tb::util::StandardFlags flags;
  flags.n = 66;
  flags.ranks = 10000;
  flags.parse(args);
  const int n = flags.n;
  const int epochs = static_cast<int>(args.get_int("epochs", 3));
  const std::string op = args.get_choice("operator", "jacobi",
                                         tb::core::registered_operators());
  const std::string topology =
      args.get_choice("topology", flags.topology, tb::topo::fabric_kinds());

  tb::core::Grid3 initial(n, n, n);
  tb::core::fill_test_pattern(initial);
  const tb::core::Grid3 kappa = tb::core::make_slab_kappa(n, n, n);

  tb::dist::DistConfig base_cfg;
  base_cfg.pipeline.teams = 1;
  base_cfg.pipeline.team_size = flags.threads;
  base_cfg.pipeline.steps_per_thread = static_cast<int>(args.get_int("T", 2));
  base_cfg.pipeline.block = {16, 8, 8};
  base_cfg.pipeline.du = 3;
  base_cfg.proc_lups = 2.0e9;  // modeled per-rank rate
  const int h = base_cfg.pipeline.levels_per_sweep();
  const int steps = epochs * h;

  std::printf(
      "distributed pipelined %s: %d^3 global, h = %d layers, %d epochs "
      "(%d steps)\n\n",
      op.c_str(), n, h, epochs, steps);

  // ---- Part 1: executing solver on the thread-backed World ----------
  // Single-rank result is the correctness anchor.
  tb::core::Grid3 anchor = initial.clone();
  {
    tb::dist::DistConfig cfg = base_cfg;
    cfg.proc_dims = {1, 1, 1};
    tb::dist::run_distributed_named(op, 1, cfg, initial, epochs, &anchor,
                                    &kappa);
  }

  tb::util::TableWriter t({"ranks", "proc grid", "sim time [ms]",
                           "MB sent/rank", "msgs/rank", "max |diff|"});
  for (const std::array<int, 3>& dims :
       {std::array<int, 3>{1, 1, 1}, {2, 1, 1}, {2, 2, 1}, {2, 2, 2},
        {4, 2, 2}}) {
    const int ranks = dims[0] * dims[1] * dims[2];
    tb::dist::DistConfig cfg = base_cfg;
    cfg.proc_dims = dims;

    tb::core::Grid3 result = initial.clone();
    RankView rank0;
    std::mutex m;
    tb::simnet::World world(ranks);
    world.run([&](tb::simnet::Comm& comm) {
      auto solver = tb::dist::make_distributed(op, comm, cfg, initial,
                                               &kappa);
      const tb::dist::DistStats st = solver->advance(epochs);
      solver->gather(comm.rank() == 0 ? &result : nullptr, 0);
      if (comm.rank() == 0) {
        const std::scoped_lock lock(m);
        rank0.sim_seconds = st.sim_seconds;
        rank0.bytes = st.comm.bytes;
        rank0.messages = st.comm.messages;
      }
    });

    t.add(ranks,
          std::to_string(dims[0]) + "x" + std::to_string(dims[1]) + "x" +
              std::to_string(dims[2]),
          world.max_sim_time() * 1e3,
          static_cast<double>(rank0.bytes) / 1e6,
          static_cast<double>(rank0.messages),
          tb::core::max_abs_diff(result, anchor));
  }
  t.print();
  std::printf(
      "\n(max |diff| must be exactly 0: the decomposed multi-halo solver is\n"
      "bit-compatible with the single-rank solver)\n\n");

  // ---- Part 2: event engine vs thread-backed oracle -----------------
  // The same 2x2x2 sequential halo schedule through both backends; on
  // the uncontended fat-tree the per-rank clocks must agree to rounding.
  const double fields = tb::perfmodel::operator_traffic(op).halo_fields;
  const tb::simnet::NetworkModel net;
  tb::dist::HaloProgramSpec prog;
  prog.global_n = {n, n, n};
  prog.proc_dims = {2, 2, 2};
  prog.halo = h;
  prog.fields = static_cast<int>(fields);
  prog.proc_lups = base_cfg.proc_lups;
  prog.epochs = epochs;
  const std::vector<tb::simnet::RankProgram> programs =
      tb::dist::build_halo_programs(prog);

  tb::simnet::World oracle(8, net);
  const tb::simnet::ReplayResult threaded =
      tb::simnet::replay_on_world(oracle, programs);
  const std::unique_ptr<tb::topo::ClusterFabric> fabric8 =
      tb::topo::make_fabric("fat-tree", 8,
                            tb::simnet::event::fabric_params_from(net));
  const tb::simnet::event::EngineResult evented =
      tb::simnet::event::run_programs(
          *fabric8, programs, tb::simnet::event::engine_config_from(net));

  double max_dev = 0.0;
  for (int r = 0; r < 8; ++r)
    max_dev = std::max(
        max_dev, std::abs(evented.final_times[static_cast<std::size_t>(r)] -
                          threaded.final_times[static_cast<std::size_t>(r)]));
  std::printf(
      "event-engine validation (8 ranks, 2x2x2, same RankPrograms):\n"
      "  thread-backed max clock %.9e s, event engine %.9e s,\n"
      "  max per-rank deviation %.3e s  [%s]\n\n",
      oracle.max_sim_time(), evented.max_time(), max_dev,
      max_dev < 1e-9 ? "agree" : "DISAGREE");

  // ---- Part 3: modeled weak-scaling sweep over the fabric -----------
  tb::simnet::event::ClusterSweepSpec spec;
  spec.topology = topology;
  spec.ranks = sweep_ranks(std::max(flags.ranks, 8));
  spec.weak = true;
  spec.n = 32;
  spec.halo = h;
  spec.epochs = epochs;
  spec.op = op;
  spec.proc_lups = base_cfg.proc_lups;
  const tb::simnet::event::SweepResult sweep =
      tb::simnet::event::run_sweep(spec);

  std::printf("modeled weak scaling, %s fabric, %d^3 cells/rank:\n",
              topology.c_str(), spec.n);
  tb::util::TableWriter s({"ranks", "proc grid", "epoch [ms]", "GLUP/s",
                           "eff [%]", "model GLUP/s", "M events/s"});
  for (const tb::simnet::event::SweepPoint& pt : sweep.points) {
    // Closed-form cross-check: the same decomposition through
    // perfmodel::evaluate_cluster (whose defaults match NetworkModel's
    // fat-tree calibration).  The models differ in the effects they
    // carry (copy streams vs link contention), so this is a sanity
    // column, not an equality.
    tb::perfmodel::ClusterRun run;
    run.nodes = pt.ranks;
    run.ppn = 1;
    run.grid = spec.n;
    run.weak = true;
    run.halo = spec.halo;
    run.proc_lups = spec.proc_lups;
    run.field_bytes = 8.0 * fields;
    const tb::perfmodel::ClusterResult model =
        tb::perfmodel::evaluate_cluster(run, {});
    s.add(pt.ranks,
          std::to_string(pt.proc_dims[0]) + "x" +
              std::to_string(pt.proc_dims[1]) + "x" +
              std::to_string(pt.proc_dims[2]),
          pt.epoch_seconds * 1e3, pt.glups, pt.efficiency * 100.0,
          model.glups, pt.events_per_sec / 1e6);
  }
  s.print();

  tb::obs::write_bench_json("simnet", tb::simnet::event::sweep_rows(sweep));
  std::printf(
      "\n(modeled rows written to BENCH_simnet.json; thread-backed part 1\n"
      "stays the executing oracle — see README \"Simulated cluster\")\n");
  return 0;
}
