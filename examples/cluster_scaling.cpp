// Cluster-scaling example: runs the *executing* distributed solver on the
// in-process rank runtime (tb::simnet) for several process counts and
// reports simulated cluster time, communication volume, and correctness
// against the single-rank run.
//
//   $ ./cluster_scaling [--n 66] [--epochs 3] [--T 2] [--t 2]
//                       [--operator jacobi|varcoef|box27|redblack|lbm]
//
// This is the code path a real MPI deployment would take: domain
// decomposition, multi-layer halo exchange along x->y->z, per-rank
// pipelined temporal blocking with shrinking update regions.  The
// operator is selected through the distributed string registry
// (dist/registry.hpp), so every registry operator runs decomposed —
// including lbm, whose 19 distribution fields ride the exchange
// alongside the density carrier (watch MB sent/rank grow ~20x over
// jacobi at the same shape).  The kappa aux grid feeds varcoef; lbm
// here uses its default lid-driven cavity geometry.
#include <cstdio>
#include <mutex>
#include <string>

#include "core/reference.hpp"
#include "dist/registry.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

namespace {

struct RankView {
  double sim_seconds = 0.0;
  std::uint64_t bytes = 0;
  std::uint64_t messages = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const tb::util::Args args(argc, argv);
  const int n = static_cast<int>(args.get_int("n", 66));
  const int epochs = static_cast<int>(args.get_int("epochs", 3));

  const std::string op = args.get_choice("operator", "jacobi",
                                         tb::core::registered_operators());

  tb::core::Grid3 initial(n, n, n);
  tb::core::fill_test_pattern(initial);
  const tb::core::Grid3 kappa = tb::core::make_slab_kappa(n, n, n);

  tb::dist::DistConfig base_cfg;
  base_cfg.pipeline.teams = 1;
  base_cfg.pipeline.team_size = static_cast<int>(args.get_int("t", 2));
  base_cfg.pipeline.steps_per_thread = static_cast<int>(args.get_int("T", 2));
  base_cfg.pipeline.block = {16, 8, 8};
  base_cfg.pipeline.du = 3;
  base_cfg.proc_lups = 2.0e9;  // modeled per-rank rate
  const int h = base_cfg.pipeline.levels_per_sweep();
  const int steps = epochs * h;

  std::printf(
      "distributed pipelined %s: %d^3 global, h = %d layers, %d epochs "
      "(%d steps)\n\n",
      op.c_str(), n, h, epochs, steps);

  // Single-rank result is the correctness anchor.
  tb::core::Grid3 anchor = initial.clone();
  {
    tb::dist::DistConfig cfg = base_cfg;
    cfg.proc_dims = {1, 1, 1};
    tb::dist::run_distributed_named(op, 1, cfg, initial, epochs, &anchor,
                                    &kappa);
  }

  tb::util::TableWriter t({"ranks", "proc grid", "sim time [ms]",
                           "MB sent/rank", "msgs/rank", "max |diff|"});
  for (const std::array<int, 3>& dims :
       {std::array<int, 3>{1, 1, 1}, {2, 1, 1}, {2, 2, 1}, {2, 2, 2},
        {4, 2, 2}}) {
    const int ranks = dims[0] * dims[1] * dims[2];
    tb::dist::DistConfig cfg = base_cfg;
    cfg.proc_dims = dims;

    tb::core::Grid3 result = initial.clone();
    RankView rank0;
    std::mutex m;
    tb::simnet::World world(ranks);
    world.run([&](tb::simnet::Comm& comm) {
      auto solver = tb::dist::make_distributed(op, comm, cfg, initial,
                                               &kappa);
      const tb::dist::DistStats st = solver->advance(epochs);
      solver->gather(comm.rank() == 0 ? &result : nullptr, 0);
      if (comm.rank() == 0) {
        const std::scoped_lock lock(m);
        rank0.sim_seconds = st.sim_seconds;
        rank0.bytes = st.comm.bytes;
        rank0.messages = st.comm.messages;
      }
    });

    t.add(ranks,
          std::to_string(dims[0]) + "x" + std::to_string(dims[1]) + "x" +
              std::to_string(dims[2]),
          world.max_sim_time() * 1e3,
          static_cast<double>(rank0.bytes) / 1e6,
          static_cast<double>(rank0.messages),
          tb::core::max_abs_diff(result, anchor));
  }
  t.print();
  std::printf(
      "\n(max |diff| must be exactly 0: the decomposed multi-halo solver is\n"
      "bit-compatible with the single-rank solver)\n");
  return 0;
}
