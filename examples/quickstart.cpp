// Quickstart: solve a 3-D boundary value problem with pipelined temporal
// blocking in ~40 lines.
//
//   $ ./quickstart [--n 128] [--steps 64] [--teams 1] [--t 2] [--T 2]
//                  [--variant pipelined] [--operator jacobi]
//   $ ./quickstart --scenario scenarios/quickstart.json
//
// Sets up a cubic domain with a hot x=0 face, advances `steps` sweeps of
// the selected (variant, operator) combination — any registry pair works,
// e.g. --variant wavefront --operator varcoef — and reports performance
// and the center temperature.  With --scenario the flags are ignored and
// the whole JSON case batch runs through the scenario engine instead.
#include <cstdio>

#include "core/registry.hpp"
#include "scenario/scenario_engine.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  const tb::util::Args args(argc, argv);
  tb::util::StandardFlags flags;
  flags.n = 128;
  flags.steps = 64;
  flags.parse(args);
  if (!flags.scenario.empty())
    return tb::scenario::run_scenario_file(flags.scenario);
  const int n = flags.n;
  const int steps = flags.steps;

  // Initial condition: zero interior, hot (T = 1) face at x = 0.
  tb::core::Grid3 initial(n, n, n);
  initial.fill(0.0);
  for (int k = 0; k < n; ++k)
    for (int j = 0; j < n; ++j) initial.at(0, j, k) = 1.0;

  // Configure the solver: one team of t threads sharing a cache, each
  // performing T in-cache updates per block (see README for tuning).
  tb::core::SolverConfig cfg;
  cfg.pipeline.teams = static_cast<int>(args.get_int("teams", 1));
  cfg.pipeline.team_size = static_cast<int>(args.get_int("t", 2));
  cfg.pipeline.steps_per_thread = static_cast<int>(args.get_int("T", 2));
  cfg.pipeline.block = {n, 16, 16};
  cfg.pipeline.du = 4;
  cfg.baseline.threads = cfg.pipeline.total_threads();
  cfg.wavefront.threads = cfg.pipeline.total_threads();
  tb::core::configure_from_args(cfg, args);  // --variant / --operator

  // The varcoef operator diffuses through a material field; default to
  // the standard conductive slab across the domain's middle third.
  tb::core::Grid3 kappa;
  if (cfg.op == tb::core::Operator::kVarCoef)
    kappa = tb::core::make_slab_kappa(n, n, n);

  tb::core::StencilSolver solver = tb::core::make_solver(
      tb::core::variant_name(cfg), to_string(cfg.op), cfg, initial, &kappa);
  const tb::core::RunStats stats = solver.advance(steps);

  // Report the *resolved* configuration: with --variant auto the solver
  // carries the tuned schedule, not the defaults set above.
  const tb::core::SolverConfig& used = solver.config();
  const tb::core::Grid3& u = solver.solution();
  std::printf("grid %d^3, %d sweeps with %s/%s (%s)\n", n, steps,
              tb::core::variant_name(used).c_str(), to_string(used.op),
              used.pipeline.describe().c_str());
  std::printf("wall time      : %.3f s\n", stats.seconds);
  std::printf("performance    : %.1f MLUP/s (host)\n", stats.mlups());
  std::printf("center value   : %.6f\n", u.at(n / 2, n / 2, n / 2));
  std::printf("near-hot value : %.6f\n", u.at(1, n / 2, n / 2));
  return 0;
}
