// Schedule trace: renders the paper's Fig. 1 from the *executing* engine.
//
//   $ ./schedule_trace [--t 3] [--teams 1] [--T 1] [--blocks 12] [--du 2]
//
// A tiny quasi-1-D domain is swept once; every window the engine hands to
// a thread is recorded in arrival order.  The printed matrix has one row
// per pipeline thread and one column per observed event: the entry is the
// block index the thread updated (at its time level).  The staircase —
// thread i trailing thread i-1 by at least d_l blocks, by at most d_u —
// is exactly Fig. 1/Fig. 2 of the paper.
#include <atomic>
#include <cstdio>
#include <mutex>
#include <vector>

#include "core/engine.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  const tb::util::Args args(argc, argv);
  tb::core::PipelineConfig cfg;
  cfg.teams = static_cast<int>(args.get_int("teams", 1));
  cfg.team_size = static_cast<int>(args.get_int("t", 3));
  cfg.steps_per_thread = static_cast<int>(args.get_int("T", 1));
  cfg.dl = static_cast<int>(args.get_int("dl", 1));
  cfg.du = static_cast<int>(args.get_int("du", 2));
  cfg.dt = static_cast<int>(args.get_int("dt", 0));

  const int blocks = static_cast<int>(args.get_int("blocks", 12));
  const int bx = 4;
  cfg.block = {bx, 64, 64};  // quasi-1-D: one block column in y and z
  const int nx = blocks * bx + 2;

  tb::core::PipelineEngine engine(
      cfg, tb::core::BlockPlan(
               cfg.block, tb::core::interior_clips(
                              nx, 8, 8, cfg.levels_per_sweep())));

  struct Event {
    int thread;
    int level;
    int block;
  };
  std::vector<Event> events;
  std::mutex m;
  engine.run_sweep(true, [&](int thread, int level,
                             const tb::core::Box& w) {
    const std::scoped_lock lock(m);
    events.push_back({thread, level, (w.lo[0] - 1 + level - 1) / bx});
  });

  const int threads = cfg.total_threads();
  std::printf(
      "pipeline schedule, %s\n"
      "rows: threads (t1 = front); columns: events in arrival order;\n"
      "cell: block index being updated (. = idle)\n\n",
      cfg.describe().c_str());

  std::vector<std::vector<std::string>> rows(
      static_cast<std::size_t>(threads));
  for (std::size_t e = 0; e < events.size(); ++e) {
    for (int p = 0; p < threads; ++p) {
      char buf[8];
      if (events[e].thread == p) {
        std::snprintf(buf, sizeof buf, "%2d", events[e].block);
      } else {
        std::snprintf(buf, sizeof buf, " .");
      }
      rows[static_cast<std::size_t>(p)].emplace_back(buf);
    }
  }
  const std::size_t cols =
      std::min<std::size_t>(events.size(),
                            static_cast<std::size_t>(
                                args.get_int("events", 36)));
  for (int p = 0; p < threads; ++p) {
    std::printf("t%-2d |", p + 1);
    for (std::size_t e = 0; e < cols; ++e)
      std::printf("%s", rows[static_cast<std::size_t>(p)][e].c_str());
    std::printf("\n");
  }

  // Verify the Fig. 2 invariants on the trace: when thread p starts block
  // b, thread p-1 has completed at least b + dl(p) blocks.
  std::vector<int> completed(static_cast<std::size_t>(threads), 0);
  bool ok = true;
  const auto bounds = tb::core::make_distance_bounds(
      cfg.teams, cfg.team_size, cfg.dl, cfg.du, cfg.dt);
  for (const Event& ev : events) {
    if (ev.level % cfg.steps_per_thread == 1 || cfg.steps_per_thread == 1) {
      const auto& b = bounds[static_cast<std::size_t>(ev.thread)];
      if (b.check_lower &&
          completed[static_cast<std::size_t>(ev.thread - 1)] <
              ev.block + static_cast<int>(b.dl) &&
          completed[static_cast<std::size_t>(ev.thread - 1)] < blocks) {
        ok = false;
      }
    }
    if (ev.level == ev.thread * cfg.steps_per_thread + cfg.steps_per_thread)
      completed[static_cast<std::size_t>(ev.thread)] = ev.block + 1;
  }
  std::printf("\ndistance conditions held throughout: %s\n",
              ok ? "yes" : "NO (bug!)");
  return ok ? 0 : 1;
}
