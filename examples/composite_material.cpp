// Heterogeneous-diffusion example: steady-state temperature of a composite
// block (insulating matrix with conductive fibers) solved with the
// variable-coefficient stencil on the pipelined temporal-blocking engine.
//
//   $ ./composite_material [--n 48] [--steps 600] [--kfiber 100]
//                          [--variant pipelined] [--vtk out.vtk]
//   $ ./composite_material --scenario scenarios/composite.json
//
// Demonstrates that the paper's scheme is not Jacobi-specific: any update
// reading only the 3^3 neighborhood of the previous level runs through
// the same team pipeline (see core/stencil_op.hpp) — and through any
// other registry variant selected with --variant.
#include <cstdio>

#include "core/grid_io.hpp"
#include "core/norms.hpp"
#include "core/registry.hpp"
#include "scenario/scenario_engine.hpp"
#include "util/args.hpp"
#include "util/timer.hpp"

namespace {

/// kappa field: background 1, an array of conductive square fibers
/// running along x.
tb::core::Grid3 fiber_material(int n, double k_fiber) {
  tb::core::Grid3 kappa(n, n, n);
  kappa.fill(1.0);
  const int pitch = std::max(4, n / 4);
  const int width = std::max(1, pitch / 3);
  for (int k = 0; k < n; ++k)
    for (int j = 0; j < n; ++j)
      if (j % pitch < width && k % pitch < width)
        for (int i = 0; i < n; ++i) kappa.at(i, j, k) = k_fiber;
  return kappa;
}

}  // namespace

int main(int argc, char** argv) {
  const tb::util::Args args(argc, argv);
  tb::util::StandardFlags flags;
  flags.n = 48;
  flags.steps = 600;
  flags.parse(args);
  if (!flags.scenario.empty())
    return tb::scenario::run_scenario_file(flags.scenario);
  const int n = flags.n;
  const double k_fiber = args.get_double("kfiber", 100.0);
  const int steps_requested = flags.steps;

  // Hot x = 0 face, cold everywhere else.
  tb::core::Grid3 initial(n, n, n);
  initial.fill(0.0);
  for (int k = 0; k < n; ++k)
    for (int j = 0; j < n; ++j) initial.at(0, j, k) = 1.0;

  tb::core::SolverConfig cfg;
  cfg.pipeline.teams = 1;
  cfg.pipeline.team_size = flags.threads;  // --t / --threads
  cfg.pipeline.steps_per_thread = 2;
  cfg.pipeline.block = {n, 12, 12};
  cfg.pipeline.du = 3;
  cfg.baseline.threads = cfg.pipeline.total_threads();
  cfg.wavefront.threads = cfg.pipeline.total_threads();
  const std::string variant = args.get_choice(
      "variant", "pipelined", tb::core::selectable_variants());
  const int steps =
      std::max(1, steps_requested / cfg.pipeline.levels_per_sweep()) *
      cfg.pipeline.levels_per_sweep();

  const tb::core::Grid3 kappa = fiber_material(n, k_fiber);
  tb::core::StencilSolver solver =
      make_solver(variant, "varcoef", cfg, initial, &kappa);

  tb::util::Timer timer;
  const tb::core::RunStats st = solver.advance(steps);
  const tb::core::Grid3& u = solver.solution();

  std::printf(
      "composite block %d^3 (%s), fiber kappa %.0f, %d steps: %.3f s, "
      "%.1f MLUP/s (host)\n",
      n, variant.c_str(), k_fiber, st.levels, timer.elapsed(), st.mlups());

  // Heat penetrates much deeper along the fibers.  Probe a fiber away
  // from the cold walls (fibers sit at multiples of the pitch) and a
  // matrix point at a comparable distance from the walls.
  const int deep = 3 * n / 4;
  const int pitch = std::max(4, n / 4);
  const int jf = (n / 2 / pitch) * pitch;            // mid-domain fiber
  const double t_fiber = u.at(deep, jf, jf);
  const double t_matrix =
      u.at(deep, jf + pitch / 2, jf + pitch / 2);    // in the matrix
  std::printf("temperature at x = %d: fiber %.4f vs matrix %.4f (x%.1f)\n",
              deep, t_fiber, t_matrix,
              t_matrix > 0 ? t_fiber / t_matrix : 0.0);

  if (args.has("vtk")) {
    const std::string path = args.get("vtk", "composite.vtk");
    if (tb::core::write_vtk(u, path, "temperature"))
      std::printf("wrote %s\n", path.c_str());
  }
  return t_fiber > t_matrix ? 0 : 1;
}
