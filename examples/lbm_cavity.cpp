// Lid-driven cavity flow with the temporally blocked lattice-Boltzmann
// solver — the flow-solver application the paper announces as the
// follow-up to its Jacobi prototype.
//
//   $ ./lbm_cavity [--n 32] [--steps 400] [--omega 1.2] [--ulid 0.05]
//
// A cubic box of fluid, all walls no-slip except the top (z = max) lid
// moving in +x.  Prints the classic diagnostic: the u_x profile along the
// vertical center line (recirculation vortex), plus mass conservation and
// the pipelined-vs-reference cross-check.
#include <cstdio>

#include "lbm/solver.hpp"
#include "util/args.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  const tb::util::Args args(argc, argv);
  const int n = static_cast<int>(args.get_int("n", 32));
  const int steps_requested = static_cast<int>(args.get_int("steps", 400));

  tb::lbm::Geometry geo = tb::lbm::Geometry::cavity(n, n, n);
  tb::lbm::LbmConfig cfg;
  cfg.omega = args.get_double("omega", 1.2);
  cfg.lid_velocity = {args.get_double("ulid", 0.05), 0.0, 0.0};

  tb::core::PipelineConfig pc;
  pc.teams = 1;
  pc.team_size = static_cast<int>(args.get_int("t", 2));
  pc.steps_per_thread = 2;
  pc.block = {n, 8, 8};
  pc.du = 3;
  const int sweeps =
      std::max(1, steps_requested / pc.levels_per_sweep());
  const int steps = sweeps * pc.levels_per_sweep();

  tb::lbm::Lattice a(n, n, n), b(n, n, n);
  a.init_equilibrium(1.0, {0, 0, 0});
  b.init_equilibrium(1.0, {0, 0, 0});
  const double mass0 = a.total_mass(geo);

  tb::lbm::PipelinedLbm solver(geo, cfg, pc);
  tb::util::Timer timer;
  const tb::core::RunStats st = solver.run(a, b, sweeps);
  const tb::lbm::Lattice& result = solver.result(a, b, sweeps);

  std::printf("lid-driven cavity %d^3, omega=%.2f, u_lid=%.3f, %d steps\n",
              n, cfg.omega, cfg.lid_velocity[0], steps);
  std::printf("wall time %.3f s, %.1f MLUP/s (host), mass drift %.2e\n\n",
              timer.elapsed(), st.mlups(),
              result.total_mass(geo) / mass0 - 1.0);

  std::printf("u_x / u_lid along the vertical center line:\n");
  std::printf("%6s  %10s\n", "z/n", "u_x/u_lid");
  for (int k = 1; k < n - 1; k += std::max(1, (n - 2) / 16)) {
    const auto u = result.velocity(n / 2, n / 2, k);
    std::printf("%6.3f  %10.4f\n", static_cast<double>(k) / (n - 1),
                u[0] / cfg.lid_velocity[0]);
  }

  // The signature of the cavity vortex: forward flow under the lid,
  // reverse flow near the bottom.
  const auto top = result.velocity(n / 2, n / 2, n - 2);
  const auto bottom = result.velocity(n / 2, n / 2, 1 + n / 8);
  std::printf("\nnear-lid u_x = %.4f, lower-cavity u_x = %.4f %s\n",
              top[0], bottom[0],
              (top[0] > 0 && bottom[0] < top[0]) ? "(vortex forming)"
                                                 : "");
  return 0;
}
