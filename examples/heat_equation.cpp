// Heat-equation example: iterate a stencil solver to steady state with a
// convergence criterion, comparing every registry variant for both
// correctness and host wall time.
//
//   $ ./heat_equation [--n 96] [--tol 1e-5] [--max-steps 2000]
//                     [--variant all] [--operator jacobi]
//   $ ./heat_equation --scenario scenarios/sweep.json
//
// The physical setup is a box with one hot face (x = 0, T = 1) and cold
// walls elsewhere; the steady state is a smooth temperature gradient
// (with --operator varcoef, through a conductive mid-height slab).
// Convergence is monitored on the maximum change per `check` sweeps.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "scenario/scenario_engine.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

tb::core::Grid3 hot_face_problem(int n) {
  tb::core::Grid3 g(n, n, n);
  g.fill(0.0);
  for (int k = 0; k < n; ++k)
    for (int j = 0; j < n; ++j) g.at(0, j, k) = 1.0;
  return g;
}

struct Outcome {
  int steps = 0;
  double seconds = 0.0;
  double mlups = 0.0;
  double residual = 0.0;
  double center = 0.0;
};

Outcome solve(tb::core::StencilSolver solver, const tb::core::Grid3& init,
              double tol, int max_steps, int check) {
  tb::core::Grid3 prev = init.clone();

  Outcome out;
  tb::util::Timer timer;
  long long updates = 0;
  while (out.steps < max_steps) {
    const tb::core::RunStats st = solver.advance(check);
    out.steps += check;
    updates += st.cell_updates;
    const tb::core::Grid3& cur = solver.solution();
    out.residual = tb::core::max_abs_diff(cur, prev);
    if (out.residual < tol) break;
    for (int k = 0; k < init.nz(); ++k)
      for (int j = 0; j < init.ny(); ++j)
        for (int i = 0; i < init.nx(); ++i)
          prev.at(i, j, k) = cur.at(i, j, k);
  }
  out.seconds = timer.elapsed();
  out.mlups = static_cast<double>(updates) / out.seconds / 1e6;
  const tb::core::Grid3& u = solver.solution();
  out.center = u.at(init.nx() / 2, init.ny() / 2, init.nz() / 2);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const tb::util::Args args(argc, argv);
  tb::util::StandardFlags flags;
  flags.n = 96;
  flags.parse(args);
  if (!flags.scenario.empty())
    return tb::scenario::run_scenario_file(flags.scenario);
  const int n = flags.n;
  const double tol = args.get_double("tol", 1e-5);
  const int max_steps = static_cast<int>(args.get_int("max-steps", 2000));
  const int threads = flags.threads;

  std::vector<std::string> variants = tb::core::registered_variants();
  {
    // Concrete names sweep; meta names ("auto") are selectable too.
    std::vector<std::string> any = tb::core::selectable_variants();
    any.emplace_back("all");
    const std::string v = args.get_choice("variant", "all", any);
    if (v == "reference") {
      variants = {"reference"};
    } else if (v != "all") {
      variants = {"reference", v};  // reference anchors the comparison
    }
  }
  const std::string op = args.get_choice("operator", "jacobi",
                                         tb::core::registered_operators());

  const tb::core::Grid3 init = hot_face_problem(n);
  const tb::core::Grid3 kappa = tb::core::make_slab_kappa(n, n, n);

  tb::core::SolverConfig cfg;
  cfg.baseline.threads = threads;
  cfg.baseline.block = {n, 16, 16};
  // Non-temporal stores force every sweep to memory; they only pay off
  // when the grid is much larger than the last-level cache (Sec. 1.1).
  // Example-sized grids usually fit in cache on workstations, so keep the
  // cache hierarchy in play here.
  cfg.baseline.nontemporal = false;
  cfg.pipeline.teams = 1;
  cfg.pipeline.team_size = threads;
  cfg.pipeline.steps_per_thread = 2;
  cfg.pipeline.block = {n, 12, 12};
  cfg.pipeline.du = 4;
  cfg.wavefront.threads = threads;

  // The convergence check interval must be a multiple of every variant's
  // team-sweep depth so no variant falls back to remainder sweeps.
  const int check =
      4 * cfg.pipeline.levels_per_sweep() * cfg.wavefront.threads;

  std::printf("heat equation: %d^3 box, hot x=0 face, operator %s, tol "
              "%.1e\n\n",
              n, op.c_str(), tol);
  tb::util::TableWriter t(
      {"variant", "steps", "seconds", "MLUP/s", "residual", "center T"});
  Outcome expected{};
  bool first = true;
  bool all_match = true;
  for (const std::string& name : variants) {
    const Outcome o =
        solve(tb::core::make_solver(name, op, cfg, init, &kappa), init, tol,
              max_steps, check);
    t.add(name, o.steps, o.seconds, o.mlups, o.residual, o.center);
    if (first) {
      expected = o;
      first = false;
    } else if (o.steps != expected.steps ||
               std::abs(o.center - expected.center) > 0) {
      all_match = false;
    }
  }
  t.print();
  std::printf("\nall variants bit-identical: %s\n",
              all_match ? "yes" : "NO (bug!)");
  return all_match ? 0 : 1;
}
