// Heat-equation example: iterate the Jacobi solver to steady state with a
// convergence criterion, comparing all three variants (reference,
// baseline, pipelined) for both correctness and host wall time.
//
//   $ ./heat_equation [--n 96] [--tol 1e-5] [--max-steps 2000]
//
// The physical setup is a box with one hot face (x = 0, T = 1) and cold
// walls elsewhere; the steady state is a smooth temperature gradient.
// Convergence is monitored on the maximum change per `check` sweeps.
#include <cmath>
#include <cstdio>

#include "core/solver.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

tb::core::Grid3 hot_face_problem(int n) {
  tb::core::Grid3 g(n, n, n);
  g.fill(0.0);
  for (int k = 0; k < n; ++k)
    for (int j = 0; j < n; ++j) g.at(0, j, k) = 1.0;
  return g;
}

struct Outcome {
  int steps = 0;
  double seconds = 0.0;
  double mlups = 0.0;
  double residual = 0.0;
  double center = 0.0;
};

Outcome solve(const tb::core::SolverConfig& cfg, const tb::core::Grid3& init,
              double tol, int max_steps, int check) {
  tb::core::JacobiSolver solver(cfg, init);
  tb::core::Grid3 prev(init.nx(), init.ny(), init.nz());
  for (int k = 0; k < init.nz(); ++k)
    for (int j = 0; j < init.ny(); ++j)
      for (int i = 0; i < init.nx(); ++i) prev.at(i, j, k) = init.at(i, j, k);

  Outcome out;
  tb::util::Timer timer;
  long long updates = 0;
  while (out.steps < max_steps) {
    const tb::core::RunStats st = solver.advance(check);
    out.steps += check;
    updates += st.cell_updates;
    const tb::core::Grid3& cur = solver.solution();
    out.residual = tb::core::max_abs_diff(cur, prev);
    if (out.residual < tol) break;
    for (int k = 0; k < init.nz(); ++k)
      for (int j = 0; j < init.ny(); ++j)
        for (int i = 0; i < init.nx(); ++i)
          prev.at(i, j, k) = cur.at(i, j, k);
  }
  out.seconds = timer.elapsed();
  out.mlups = static_cast<double>(updates) / out.seconds / 1e6;
  const tb::core::Grid3& u = solver.solution();
  out.center = u.at(init.nx() / 2, init.ny() / 2, init.nz() / 2);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const tb::util::Args args(argc, argv);
  const int n = static_cast<int>(args.get_int("n", 96));
  const double tol = args.get_double("tol", 1e-5);
  const int max_steps = static_cast<int>(args.get_int("max-steps", 2000));

  const tb::core::Grid3 init = hot_face_problem(n);
  const int threads = static_cast<int>(args.get_int("threads", 2));

  tb::core::SolverConfig ref;
  ref.variant = tb::core::Variant::kReference;

  tb::core::SolverConfig base;
  base.variant = tb::core::Variant::kBaseline;
  base.baseline.threads = threads;
  base.baseline.block = {n, 16, 16};
  // Non-temporal stores force every sweep to memory; they only pay off
  // when the grid is much larger than the last-level cache (Sec. 1.1).
  // Example-sized grids usually fit in cache on workstations, so keep the
  // cache hierarchy in play here.
  base.baseline.nontemporal = false;

  tb::core::SolverConfig pipe;
  pipe.variant = tb::core::Variant::kPipelined;
  pipe.pipeline.teams = 1;
  pipe.pipeline.team_size = threads;
  pipe.pipeline.steps_per_thread = 2;
  pipe.pipeline.block = {n, 12, 12};
  pipe.pipeline.du = 4;

  tb::core::SolverConfig comp = pipe;
  comp.pipeline.scheme = tb::core::GridScheme::kCompressed;

  // The convergence check interval must be a multiple of the team-sweep
  // depth so the pipelined variants never fall back to remainder sweeps.
  const int check = 4 * pipe.pipeline.levels_per_sweep();

  std::printf("heat equation: %d^3 box, hot x=0 face, tol %.1e\n\n", n, tol);
  tb::util::TableWriter t(
      {"variant", "steps", "seconds", "MLUP/s", "residual", "center T"});
  Outcome expected{};
  bool first = true;
  bool all_match = true;
  for (const auto& [name, cfg] :
       {std::pair<const char*, const tb::core::SolverConfig&>{"reference", ref},
        {"baseline", base},
        {"pipelined", pipe},
        {"compressed", comp}}) {
    const Outcome o = solve(cfg, init, tol, max_steps, check);
    t.add(name, o.steps, o.seconds, o.mlups, o.residual, o.center);
    if (first) {
      expected = o;
      first = false;
    } else if (o.steps != expected.steps ||
               std::abs(o.center - expected.center) > 0) {
      all_match = false;
    }
  }
  t.print();
  std::printf("\nall variants bit-identical: %s\n",
              all_match ? "yes" : "NO (bug!)");
  return all_match ? 0 : 1;
}
