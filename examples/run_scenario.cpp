// Scenario runner: executes a JSON scenario file — a whole batch of
// (operator, variant, shape) cases, sweeps and repeats — through ONE
// re-entrant solver session in one process.
//
//   $ ./run_scenario --scenario scenarios/sweep.json [--tune-cache f]
//
// Repeat (shape, config) pairs reuse the pooled solver (grids, side
// channels, thread pools) via StencilSolver::reset, and "auto" cases
// share the session's tuning cache, so repeat shapes replay their plan
// with zero probes.  With TB_TELEMETRY=1 every case appends one
// model-vs-measured row to the run database ($TB_RUNDB) and records a
// scenario.case trace span — the same sinks the benches and examples
// use.  This binary replaces the one-main()-per-workload pattern: new
// workloads are .json files under scenarios/, not new C++.
#include <cstdio>

#include "scenario/cluster_section.hpp"
#include "scenario/scenario_engine.hpp"
#include "tune/planner.hpp"  // linking tb_tune registers --variant auto
#include "util/args.hpp"

int main(int argc, char** argv) {
  const tb::util::Args args(argc, argv);
  tb::util::StandardFlags flags;
  flags.parse(args);
  if (flags.scenario.empty()) {
    std::fprintf(stderr,
                 "usage: run_scenario --scenario <file.json> "
                 "[--tune-cache <file>]\n");
    return 2;
  }
  // "cluster" sections route modeled scaling sweeps through the
  // discrete-event simnet backend; their rows land in BENCH_simnet.json
  // (and the run database when telemetry is on) next to the case rows.
  tb::scenario::ClusterSection cluster({/*verbose=*/true,
                                        /*bench=*/"simnet"});
  return tb::scenario::run_scenario_file(flags.scenario,
                                         args.get("tune-cache", ""),
                                         {&cluster});
}
